/**
 * @file
 * Parameterized sweeps across the full configuration space:
 *
 *  - every (policy x topology) combination holds the structural
 *    invariants, conserves lines, and produces finite, positive energy;
 *  - every benchmark of the suite runs under SLIP+ABP;
 *  - the EOU fixed-point argmin is checked EXHAUSTIVELY against the
 *    double-precision reference over all 16^4 possible 4-bit
 *    distributions, for both levels and both candidate pools;
 *  - CacheLevel mechanics hold across cache geometries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/system.hh"
#include "slip/eou.hh"
#include "workloads/spec_suite.hh"

namespace slip {
namespace {

// ---------------------------------------------------------------------
// (policy x topology) sweep
// ---------------------------------------------------------------------

using PolicyTopo = std::tuple<PolicyKind, TopologyKind>;

class PolicyTopologySweep : public ::testing::TestWithParam<PolicyTopo>
{};

TEST_P(PolicyTopologySweep, RunsCleanlyWithInvariants)
{
    SystemConfig cfg;
    cfg.policy = std::get<0>(GetParam());
    cfg.topology = std::get<1>(GetParam());
    cfg.seed = 5;
    System sys(cfg);
    auto w = makeSpecWorkload("gcc");
    sys.run({w.get()}, 80000, 20000);

    sys.checkInvariants();
    const auto l2 = sys.combinedL2Stats();
    EXPECT_GT(l2.demandAccesses, 0u);
    EXPECT_GT(sys.l2EnergyPj(), 0.0);
    EXPECT_GT(sys.l3EnergyPj(), 0.0);
    EXPECT_TRUE(std::isfinite(sys.totalCycles()));
    EXPECT_GT(sys.totalCycles(), 0.0);
    // Accounting identity: hits never exceed accesses; insertions
    // never exceed misses (+ writeback fills).
    EXPECT_LE(l2.demandHits, l2.demandAccesses);
    EXPECT_LE(l2.insertions + l2.bypasses,
              l2.demandMisses() + l2.metadataAccesses + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyTopologySweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Baseline, PolicyKind::NuRapid,
                          PolicyKind::LruPea, PolicyKind::Slip,
                          PolicyKind::SlipAbp),
        ::testing::Values(TopologyKind::HierBusWayInterleaved,
                          TopologyKind::HierBusSetInterleaved,
                          TopologyKind::HTree,
                          TopologyKind::RingSlice)));

// ---------------------------------------------------------------------
// benchmark sweep
// ---------------------------------------------------------------------

class BenchmarkSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(BenchmarkSweep, SlipAbpRunsAndAccountsSanely)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::SlipAbp;
    System sys(cfg);
    auto w = makeSpecWorkload(GetParam());
    sys.run({w.get()}, 100000, 50000);

    sys.checkInvariants();
    const auto l2 = sys.combinedL2Stats();
    const auto &l3 = sys.l3().stats();
    // Traffic flows downhill: L3 sees no more demand than L2 produced
    // (misses + writebacks + PTE walks).
    EXPECT_LE(l3.demandAccesses,
              l2.demandMisses() + l2.writebacks + l2.bypasses +
                  sys.tlb(0).misses() * 2 + 1);
    // Energy categories are all non-negative and sum to the total.
    double sum = 0;
    for (double e : l2.energyPj) {
        EXPECT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_DOUBLE_EQ(sum, l2.totalEnergyPj());
    // Insert classes partition the insert+bypass count.
    std::uint64_t cls = 0;
    for (auto c : l2.insertClass)
        cls += c;
    EXPECT_EQ(cls, l2.insertions + l2.bypasses);
}

INSTANTIATE_TEST_SUITE_P(Suite, BenchmarkSweep,
                         ::testing::ValuesIn(specBenchmarks()));

// ---------------------------------------------------------------------
// exhaustive EOU verification
// ---------------------------------------------------------------------

struct EouCase
{
    bool l3;
    bool abp;
};

class EouExhaustive : public ::testing::TestWithParam<std::tuple<bool, bool>>
{};

TEST_P(EouExhaustive, AllDistributionsMatchReference)
{
    const bool use_l3 = std::get<0>(GetParam());
    const bool abp = std::get<1>(GetParam());

    SlipEnergyModelParams p;
    p.sublevelWays = {4, 4, 8};
    if (use_l3) {
        p.sublevelEnergy = {67.0, 113.0, 176.0};
        p.nextLevelEnergy = 10240.0;
    } else {
        p.sublevelEnergy = {21.0, 33.0, 50.0};
        p.nextLevelEnergy = 133.0;
    }
    SlipEnergyModel model(p);
    Eou eou(model, abp);

    // All 16^4 = 65536 possible 4-bit distributions.
    const double tol = 0.3 * 15 * 4;  // quantization slack
    for (unsigned word = 0; word < 65536; ++word) {
        std::uint8_t bins[4];
        double probs[4];
        for (int b = 0; b < 4; ++b) {
            bins[b] = (word >> (4 * b)) & 0xF;
            probs[b] = bins[b];
        }
        const std::uint8_t fx = eou.optimize(bins);
        if (word == 0) {
            // Empty distribution: defined fallback, skip comparison.
            ASSERT_EQ(fx, SlipPolicy::defaultCode(3));
            continue;
        }
        const double e_fx =
            model.energy(SlipPolicy::fromCode(3, fx), probs);
        const std::uint8_t ref = eou.referenceOptimize(probs);
        const double e_ref =
            model.energy(SlipPolicy::fromCode(3, ref), probs);
        ASSERT_LE(e_fx, e_ref + tol)
            << "dist word 0x" << std::hex << word;
        if (!abp) {
            ASSERT_NE(fx, SlipPolicy::kAbpCode);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pools, EouExhaustive,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()));

// ---------------------------------------------------------------------
// cache geometry sweep
// ---------------------------------------------------------------------

struct Geometry
{
    std::uint64_t kb;
    unsigned ways;
    std::array<unsigned, 3> slWays;
    unsigned waysPerRow;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{};

TEST_P(GeometrySweep, MechanicsHoldAcrossGeometries)
{
    const Geometry g = GetParam();
    CacheLevelConfig cfg;
    cfg.sizeBytes = g.kb * 1024;
    cfg.ways = g.ways;
    cfg.sublevelWays = g.slWays;
    cfg.waysPerRow = g.waysPerRow;
    cfg.energy = tech45nm().l2;
    CacheLevel level(cfg);

    EXPECT_EQ(level.numLines() * kLineSize, cfg.sizeBytes);
    EXPECT_EQ(level.sublevelCumLines(2), level.numLines());

    // Fill-evict churn, then invariants.
    BaselineController ctrl(level, kSlipL2);
    Random rng(g.kb * 131 + g.ways);
    std::vector<Eviction> evs;
    for (int i = 0; i < 20000; ++i) {
        const Addr line = rng.below(level.numLines() * 3);
        const auto r = level.lookup(line, AccessClass::Demand);
        if (r.hit)
            level.recordHit(r.setIndex, r.way, false,
                            AccessClass::Demand, false);
        else
            ctrl.fill(line, rng.chance(0.3), PageCtx{}, evs),
                evs.clear();
    }
    level.checkInvariants();
    EXPECT_GT(level.stats().demandHits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(Geometry{64, 8, {2, 2, 4}, 2},
                      Geometry{128, 16, {4, 4, 8}, 4},
                      Geometry{256, 16, {4, 4, 8}, 4},
                      Geometry{512, 8, {2, 2, 4}, 2},
                      Geometry{2048, 16, {4, 4, 8}, 4},
                      Geometry{4096, 16, {8, 4, 4}, 4}));

// ---------------------------------------------------------------------
// rd-bin-width x policy sweep at system level
// ---------------------------------------------------------------------

class BinWidthSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(BinWidthSweep, SystemRunsAtEveryWidth)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::SlipAbp;
    cfg.rdBinBits = GetParam();
    System sys(cfg);
    auto w = makeSpecWorkload("milc");
    sys.run({w.get()}, 60000, 30000);
    sys.checkInvariants();
    EXPECT_GT(sys.eouOperations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, BinWidthSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

} // namespace
} // namespace slip
