/**
 * @file
 * Scenario-layer tests: the declarative JSON front-end over the
 * composable hierarchy.
 *
 *  - CLI-key round trips for the policy/topology/replacement parsers
 *    (the string<->enum dedup these registries replaced),
 *  - canonical scenarios round-trip through text and match the
 *    checked-in scenarios/ files byte-for-byte (SLIP_SCENARIO_REGEN=1
 *    rewrites them),
 *  - strict validation: every rejection names the offending JSON path,
 *  - malformed JSON never crashes the parser,
 *  - v9 cache keys: file-loaded and programmatic descriptions of the
 *    same configuration hash identically, one-field edits miss,
 *  - a System built from the golden scenarios reproduces the golden
 *    fixtures byte-for-byte,
 *  - 2- and 4-level scenario hierarchies run end-to-end with the
 *    ledger and metamorphic invariants intact.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "energy/topology.hh"
#include "obs/energy_ledger.hh"
#include "obs/metrics.hh"
#include "scenario/canonical.hh"
#include "scenario/scenario.hh"
#include "sim/policy_registry.hh"
#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "sweep/run_spec.hh"
#include "workloads/spec_suite.hh"

#ifndef SLIP_SCENARIO_DIR
#error "SLIP_SCENARIO_DIR must point at the checked-in scenarios/"
#endif
#ifndef SLIP_GOLDEN_DIR
#error "SLIP_GOLDEN_DIR must point at tests/golden"
#endif

namespace slip {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(bool(in)) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------------
// Registry key round trips (the parsers every layer now shares).

TEST(PolicyKindKeys, RoundTripAndAliases)
{
    for (PolicyKind k :
         {PolicyKind::Baseline, PolicyKind::NuRapid, PolicyKind::LruPea,
          PolicyKind::Slip, PolicyKind::SlipAbp}) {
        PolicyKind back;
        ASSERT_TRUE(parsePolicyKind(policyCliName(k), back))
            << policyCliName(k);
        EXPECT_EQ(back, k);
        // The canonical key is also a registered level policy.
        EXPECT_NE(findLevelPolicy(policyCliName(k)), nullptr);
    }
    PolicyKind k;
    EXPECT_TRUE(parsePolicyKind("lrupea", k));
    EXPECT_EQ(k, PolicyKind::LruPea);
    EXPECT_TRUE(parsePolicyKind("slip-abp", k));
    EXPECT_EQ(k, PolicyKind::SlipAbp);
    EXPECT_FALSE(parsePolicyKind("SLIP", k));
    EXPECT_FALSE(parsePolicyKind("", k));
}

TEST(TopologyKindKeys, RoundTrip)
{
    for (TopologyKind k :
         {TopologyKind::HierBusWayInterleaved,
          TopologyKind::HierBusSetInterleaved, TopologyKind::HTree,
          TopologyKind::RingSlice}) {
        TopologyKind back;
        ASSERT_TRUE(parseTopologyKind(topologyCliName(k), back))
            << topologyCliName(k);
        EXPECT_EQ(back, k);
    }
    TopologyKind k;
    EXPECT_FALSE(parseTopologyKind("mesh", k));
}

TEST(ReplKindKeys, RoundTrip)
{
    for (ReplKind k :
         {ReplKind::Lru, ReplKind::Rrip, ReplKind::Random}) {
        ReplKind back;
        ASSERT_TRUE(parseReplKind(replCliName(k), back))
            << replCliName(k);
        EXPECT_EQ(back, k);
    }
    ReplKind k;
    EXPECT_FALSE(parseReplKind("plru", k));
}

// ---------------------------------------------------------------------
// Canonical scenarios: text round trips and checked-in files.

TEST(CanonicalScenarios, RoundTripThroughText)
{
    const auto all = canonicalScenarios();
    ASSERT_GE(all.size(), 20u);
    for (const Scenario &s : all) {
        SCOPED_TRACE(s.name);
        const std::string text = canonicalScenarioText(s);
        Scenario back;
        ASSERT_EQ(parseScenarioText(text, back), "");
        EXPECT_EQ(back.name, s.name);
        EXPECT_EQ(back.policy, s.policy);
        EXPECT_EQ(back.workloads, s.workloads);
        EXPECT_EQ(back.hierarchy, s.hierarchy);
        // Emission is a fixed point: parse(emit(s)) emits the same
        // bytes, so the files regenerate deterministically.
        EXPECT_EQ(canonicalScenarioText(back), text);
        EXPECT_EQ(validateScenario(back), "");
    }
}

TEST(CanonicalScenarios, CheckedInFilesMatchEmitter)
{
    const bool regen = std::getenv("SLIP_SCENARIO_REGEN") != nullptr;
    for (const Scenario &s : canonicalScenarios()) {
        SCOPED_TRACE(s.name);
        const std::string path =
            std::string(SLIP_SCENARIO_DIR) + "/" + s.name + ".json";
        const std::string want = canonicalScenarioText(s);
        if (regen) {
            std::ofstream os(path, std::ios::binary);
            ASSERT_TRUE(bool(os)) << path;
            os << want;
            continue;
        }
        EXPECT_EQ(readFile(path), want)
            << path << " drifted from the programmatic definition; "
            << "regenerate with SLIP_SCENARIO_REGEN=1";
    }
}

// ---------------------------------------------------------------------
// Validation: every rejection names the offending JSON path.

std::string
parseErr(const std::string &text)
{
    Scenario s;
    return parseScenarioText(text, s);
}

TEST(ScenarioValidation, ErrorsNameTheJsonPath)
{
    const struct
    {
        const char *text;
        const char *want;  ///< required substring of the error
    } cases[] = {
        {"{\"workload\":\"soplex\"}", "$.name: required"},
        {"{\"name\":\"t\"}", "$.workload: required"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"frobnicate\":1}",
         "$.frobnicate: unknown key"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"workloads\":[\"mcf\"]}",
         "not both"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"cores\":\"two\"}",
         "$.cores: expected a non-negative integer"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"cores\":0}",
         "$.cores: must be in [1, 64]"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"refs\":-5}",
         "$.refs: must be non-negative"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"rd_bin_bits\":19}",
         "$.rd_bin_bits: must be in [1, 16]"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"sampling\":\"maybe\"}",
         "$.sampling: expected \"time\" or \"always\""},
        {"{\"name\":\"t\",\"workload\":\"nosuch\"}",
         "$.workloads[0]: unknown workload 'nosuch'"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"policy\":\"clock\"}",
         "$.policy: unknown policy 'clock'"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"tech\":\"7nm\"}",
         "$.tech: unknown technology '7nm'"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"topology\":\"mesh\"}",
         "$.topology: unknown topology 'mesh'"},
        {"{\"name\":\"t\",\"cores\":3,"
         "\"workloads\":[\"soplex\",\"mcf\"]}",
         "$.workloads: need exactly 1 entry or one per core (3)"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":3}",
         "$.levels: expected an array"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":"
         "[{\"size_kb\":32,\"ways\":8}]}",
         "$.levels[0].name: required"},
        {"{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":"
         "[{\"name\":\"l1\",\"size_kb\":32,\"ways\":8,\"nope\":1}]}",
         "$.levels[0].nope: unknown key"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.text);
        const std::string err = parseErr(c.text);
        EXPECT_NE(err.find(c.want), std::string::npos)
            << "error was: " << err;
    }
}

/** A structurally plausible three-level scaffold for level mutations. */
std::string
threeLevels(const std::string &l1_extra, const std::string &l2_extra,
            const std::string &l3_extra)
{
    return "{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":["
           "{\"name\":\"l1\",\"size_kb\":32,\"ways\":8" +
           l1_extra +
           "},"
           "{\"name\":\"l2\",\"size_kb\":256,\"ways\":16" +
           l2_extra +
           "},"
           "{\"name\":\"l3\",\"size_kb\":4096,\"ways\":16,"
           "\"private\":false" +
           l3_extra + "}]}";
}

TEST(ScenarioValidation, HierarchyErrorsNameTheLevel)
{
    EXPECT_EQ(parseErr(threeLevels("", "", "")), "");

    std::string err = parseErr(
        "{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":["
        "{\"name\":\"l1\",\"size_kb\":32,\"ways\":12},"
        "{\"name\":\"l2\",\"size_kb\":256,\"ways\":16},"
        "{\"name\":\"l3\",\"size_kb\":4096,\"ways\":16,"
        "\"private\":false}]}");
    EXPECT_NE(err.find("$.levels[0]"), std::string::npos) << err;
    EXPECT_NE(err.find("power of two"), std::string::npos) << err;

    err = parseErr(
        "{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":["
        "{\"name\":\"l1\",\"size_kb\":32,\"ways\":8},"
        "{\"name\":\"l2\",\"size_kb\":100,\"ways\":16},"
        "{\"name\":\"l3\",\"size_kb\":4096,\"ways\":16,"
        "\"private\":false}]}");
    EXPECT_NE(err.find("$.levels[1]"), std::string::npos) << err;
    EXPECT_NE(err.find("power of two"), std::string::npos) << err;

    err = parseErr(
        threeLevels("", ",\"sublevel_ways\":[1,2,3]", ""));
    EXPECT_NE(err.find("$.levels[1]"), std::string::npos) << err;
    EXPECT_NE(err.find("sublevel"), std::string::npos) << err;

    // SLIP needs reuse-distance profiling, which the innermost level
    // (the profiling filter itself) cannot have.
    err = parseErr(threeLevels(",\"policy\":\"slip\"", "", ""));
    EXPECT_NE(err.find("$.levels[0]"), std::string::npos) << err;
    EXPECT_NE(err.find("baseline policy"), std::string::npos) << err;

    // Line/page metadata has kMaxSlipLevels RD slots.
    const std::string four =
        "{\"name\":\"t\",\"workload\":\"soplex\",\"levels\":["
        "{\"name\":\"l1\",\"size_kb\":32,\"ways\":8},"
        "{\"name\":\"l2\",\"size_kb\":256,\"ways\":16,"
        "\"policy\":\"slip\"},"
        "{\"name\":\"l3\",\"size_kb\":1024,\"ways\":16,"
        "\"policy\":\"slip\"},"
        "{\"name\":\"l4\",\"size_kb\":4096,\"ways\":16,"
        "\"private\":false,\"policy\":\"slip+abp\"}]}";
    err = parseErr(four);
    EXPECT_NE(err.find("$.levels[3].policy"), std::string::npos) << err;
    EXPECT_NE(err.find("SLIP-managed"), std::string::npos) << err;

    err = parseErr(threeLevels("", ",\"repl\":\"plru\"", ""));
    EXPECT_NE(err.find("$.levels[1]"), std::string::npos) << err;
    EXPECT_NE(err.find("replacement"), std::string::npos) << err;
}

TEST(ScenarioValidation, MalformedJsonNeverCrashes)
{
    const char *cases[] = {
        "",
        "   ",
        "{",
        "}",
        "[1,2",
        "nul",
        "{\"name\":}",
        "{\"name\":\"x\" \"policy\":\"y\"}",
        "{\"name\":\"x\",}",
        "{\"refs\":+1}",
        "{\"name\":\"x\\",
        "\"just a string\"",
        "{\"a\":1}}",
        "{\"a\":01}",
        "[[[[[[[[[[[[[[[[",
        "{\"name\":\"\\u00zz\"}",
    };
    for (const char *text : cases) {
        SCOPED_TRACE(text);
        Scenario s;
        const std::string err = parseScenarioText(text, s);
        EXPECT_FALSE(err.empty());
    }
}

// ---------------------------------------------------------------------
// v10 cache keys.

TEST(CacheKeyV10, EmptyAndSpelledOutClassicShareKeys)
{
    EXPECT_EQ(HierarchySpec{}.key(), HierarchySpec::classic().key());

    SweepOptions legacy;
    SweepOptions spelled;
    spelled.hierarchy = HierarchySpec::classic();
    const RunSpec a =
        RunSpec::single("soplex", PolicyKind::Slip, legacy);
    const RunSpec b =
        RunSpec::single("soplex", PolicyKind::Slip, spelled);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_NE(a.key().find("_v10_"), std::string::npos) << a.key();
}

TEST(CacheKeyV10, FileScenarioMatchesProgrammaticConfig)
{
    // The golden scenario spells out the classic hierarchy in JSON;
    // a legacy programmatic SweepOptions must hit the same cache
    // entry.
    Scenario s;
    ASSERT_EQ(loadScenarioFile(std::string(SLIP_SCENARIO_DIR) +
                                   "/golden_soplex_slip.json",
                               s),
              "");
    SweepOptions file_opts;
    file_opts.refs = s.refs;
    file_opts.warmup = s.warmup;
    file_opts.hierarchy = s.hierarchy;

    SweepOptions prog_opts;
    prog_opts.refs = 40000;
    prog_opts.warmup = 40000;

    PolicyKind pk;
    ASSERT_TRUE(parsePolicyKind(s.policy, pk));
    EXPECT_EQ(RunSpec::single(s.workloads[0], pk, file_opts).key(),
              RunSpec::single("soplex", PolicyKind::Slip, prog_opts)
                  .key());
}

TEST(CacheKeyV10, OneFieldEditMisses)
{
    SweepOptions base;
    base.hierarchy = HierarchySpec::classic();
    const std::string k0 =
        RunSpec::single("soplex", PolicyKind::Slip, base).key();

    SweepOptions edit = base;
    edit.hierarchy.levels[1].ways = 8;  // still a valid power of two
    EXPECT_NE(RunSpec::single("soplex", PolicyKind::Slip, edit).key(),
              k0);

    edit = base;
    edit.hierarchy.levels[2].sizeBytes *= 2;
    EXPECT_NE(RunSpec::single("soplex", PolicyKind::Slip, edit).key(),
              k0);

    edit = base;
    edit.hierarchy.levels[1].policy = "lru-pea";
    EXPECT_NE(RunSpec::single("soplex", PolicyKind::Slip, edit).key(),
              k0);

    // Sharing-topology fields are part of the v10 key: a one-field
    // edit to the slice count or the shared flag must miss while an
    // unrelated run still hits (cache hygiene for the NUCA work).
    edit = base;
    edit.hierarchy.levels[2].slices = 4;
    EXPECT_NE(RunSpec::single("soplex", PolicyKind::Slip, edit).key(),
              k0);

    edit = base;
    edit.hierarchy.levels[2].coherent = true;
    EXPECT_NE(RunSpec::single("soplex", PolicyKind::Slip, edit).key(),
              k0);

    edit = base;
    edit.hierarchy.levels[1].isPrivate = false;  // flip shared flag
    EXPECT_NE(RunSpec::single("soplex", PolicyKind::Slip, edit).key(),
              k0);

    // An unrelated run is unaffected: rebuilding the identical spec
    // reproduces the identical key, so cached classic results still
    // hit after the sharing-topology fields joined the key format.
    EXPECT_EQ(RunSpec::single("soplex", PolicyKind::Slip, base).key(),
              k0);
}

// ---------------------------------------------------------------------
// End-to-end: golden byte-identity and non-classic shapes.

TEST(ScenarioEndToEnd, GoldenScenariosReproduceGoldenFixtures)
{
    const struct
    {
        const char *scenario;
        const char *fixture;
    } cases[] = {
        {"golden_soplex_baseline", "soplex.Baseline.txt"},
        {"golden_soplex_slip", "soplex.SLIP.txt"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.scenario);
        Scenario s;
        ASSERT_EQ(loadScenarioFile(std::string(SLIP_SCENARIO_DIR) +
                                       "/" + c.scenario + ".json",
                                   s),
                  "");
        System sys(scenarioSystemConfig(s));
        auto src = makeMixSource(s.workloads[0], 0, s.workloadSeed);
        sys.run({src.get()}, s.refs, s.warmup);
        std::ostringstream os;
        dumpStats(sys, os);
        EXPECT_EQ(os.str(),
                  readFile(std::string(SLIP_GOLDEN_DIR) + "/" +
                           c.fixture))
            << "a scenario-built System diverged from the golden "
               "fixture";
    }
}

/** Shared invariants for the hierarchy-shape scenarios. */
void
checkScenarioRun(System &sys, std::uint64_t refs)
{
    sys.checkInvariants();
    EXPECT_EQ(sys.combinedLevelStats(0).demandAccesses,
              refs * sys.numCores());
    double level_sum = 0;
    for (unsigned i = 0; i < sys.numLevels(); ++i) {
        const double pj = sys.levelEnergyPj(i);
        EXPECT_GE(pj, 0.0) << sys.levelName(i);
        // The per-cause ledger partitions the level total exactly.
        EXPECT_NEAR(obs::ledgerTotal(sys.levelLedger(i)), pj,
                    1e-9 * (pj + 1))
            << sys.levelName(i);
        level_sum += pj;
    }
    const double component_sum =
        sys.instructions() * sys.config().tech.corePjPerInstr +
        level_sum + sys.dram().energyPj();
    EXPECT_NEAR(sys.fullSystemEnergyPj(), component_sum,
                1e-9 * component_sum);
}

TEST(ScenarioEndToEnd, TwoLevelHierarchy)
{
    Scenario s;
    ASSERT_EQ(loadScenarioFile(std::string(SLIP_SCENARIO_DIR) +
                                   "/hier2_flat_llc.json",
                               s),
              "");
    obs::setMetricsEnabled(true);
    System sys(scenarioSystemConfig(s));
    ASSERT_EQ(sys.numLevels(), 2u);
    EXPECT_EQ(sys.levelName(0), "l1");
    EXPECT_EQ(sys.levelName(1), "llc");
    // The shared LLC runs SLIP on RD slot 0.
    ASSERT_EQ(sys.numSlipSlots(), 1u);
    EXPECT_EQ(sys.slipLevel(0), 1u);

    constexpr std::uint64_t kRefs = 30000;
    auto src = makeMixSource(s.workloads[0], 0, s.workloadSeed);
    sys.run({src.get()}, kRefs, 10000);
    checkScenarioRun(sys, kRefs);
    EXPECT_GT(sys.eouOperations(), 0u);
    obs::setMetricsEnabled(false);
}

TEST(ScenarioEndToEnd, FourLevelHierarchy)
{
    Scenario s;
    ASSERT_EQ(loadScenarioFile(std::string(SLIP_SCENARIO_DIR) +
                                   "/hier4_deep.json",
                               s),
              "");
    obs::setMetricsEnabled(true);
    System sys(scenarioSystemConfig(s));
    ASSERT_EQ(sys.numLevels(), 4u);
    EXPECT_EQ(sys.levelName(2), "l3");
    EXPECT_EQ(sys.levelName(3), "l4");
    // SLIP claims the two RD slots on l2 and the LLC; the baseline l3
    // in between claims none.
    ASSERT_EQ(sys.numSlipSlots(), 2u);
    EXPECT_EQ(sys.slipLevel(0), 1u);
    EXPECT_EQ(sys.slipLevel(1), 3u);

    constexpr std::uint64_t kRefs = 30000;
    auto src = makeMixSource(s.workloads[0], 0, s.workloadSeed);
    sys.run({src.get()}, kRefs, 10000);
    checkScenarioRun(sys, kRefs);
    EXPECT_GT(sys.eouOperations(), 0u);
    obs::setMetricsEnabled(false);

    // Determinism: an identical scenario-built System replays to the
    // same energy figure.
    System sys2(scenarioSystemConfig(s));
    auto src2 = makeMixSource(s.workloads[0], 0, s.workloadSeed);
    sys2.run({src2.get()}, kRefs, 10000);
    EXPECT_EQ(sys2.fullSystemEnergyPj(), sys.fullSystemEnergyPj());
    EXPECT_EQ(sys2.combinedLevelStats(3).demandHits,
              sys.combinedLevelStats(3).demandHits);
}

/** Run the scenario's cores at @p run_threads, dump the stats. */
std::string
runScenario(const Scenario &s, unsigned run_threads)
{
    SystemConfig cfg = scenarioSystemConfig(s);
    cfg.runThreads = run_threads;
    System sys(cfg);
    std::vector<std::unique_ptr<AccessSource>> owned;
    std::vector<AccessSource *> sources;
    for (unsigned c = 0; c < s.cores; ++c) {
        owned.push_back(makeMixSource(s.workloads[0], c,
                                      s.workloadSeed));
        sources.push_back(owned.back().get());
    }
    sys.run(sources, s.refs, s.warmup);
    std::ostringstream os;
    dumpStats(sys, os);
    return os.str();
}

/**
 * Golden fixture for the 4-core shared-coherent-LLC scenario:
 * serial and pipelined runs must both reproduce the checked-in
 * stats dump byte-for-byte (the merge stage replays directory
 * bookkeeping in serial reference order), the ledger must still
 * partition every level's energy with the coherence bin live, and
 * the slice/coherence counters must be present and nonzero.
 * SLIP_GOLDEN_REGEN=1 rewrites tests/golden/shared4.Baseline.txt.
 */
TEST(ScenarioEndToEnd, SharedCoherentLlcGolden)
{
    Scenario s;
    ASSERT_EQ(loadScenarioFile(std::string(SLIP_SCENARIO_DIR) +
                                   "/hier3_shared4.json",
                               s),
              "");
    ASSERT_EQ(s.cores, 4u);

    obs::setMetricsEnabled(true);
    SystemConfig cfg = scenarioSystemConfig(s);
    cfg.runThreads = 1;
    System sys(cfg);
    std::vector<std::unique_ptr<AccessSource>> owned;
    std::vector<AccessSource *> sources;
    for (unsigned c = 0; c < s.cores; ++c) {
        owned.push_back(makeMixSource(s.workloads[0], c,
                                      s.workloadSeed));
        sources.push_back(owned.back().get());
    }
    sys.run(sources, s.refs, s.warmup);
    checkScenarioRun(sys, s.refs);

    // Coherence-lite is live: every demand write probed the
    // directory and the modelled probe energy landed in the
    // `coherence` cause bin of the shared level.
    ASSERT_TRUE(sys.coherenceEnabled());
    EXPECT_GT(sys.coherenceWriteProbes(), 0u);
    const unsigned llc = sys.numLevels() - 1;
    EXPECT_GT(sys.combinedLevelStats(llc).causePj[static_cast<unsigned>(
                  obs::EnergyCause::Coherence)],
              0.0);
    // Every NUCA slice took traffic (slice hot-spotting visibility).
    ASSERT_EQ(sys.levelSlices(llc), 4u);
    for (unsigned u = 0; u < sys.levelUnits(llc); ++u)
        EXPECT_GT(sys.levelUnit(llc, u).stats().demandAccesses, 0u)
            << "slice " << u;
    obs::setMetricsEnabled(false);

    std::ostringstream os;
    dumpStats(sys, os);
    const std::string got = os.str();

    const std::string path =
        std::string(SLIP_GOLDEN_DIR) + "/shared4.Baseline.txt";
    if (std::getenv("SLIP_GOLDEN_REGEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
        out << got;
        ASSERT_TRUE(out.good()) << "short write to " << path;
        GTEST_SKIP() << "regenerated " << path;
    }
    EXPECT_EQ(got, readFile(path))
        << "the shared-LLC scenario diverged from its golden fixture "
        << path;

    // Pipelined execution is a strategy, not a configuration: the
    // fixture must also hold at the scenario's run_threads hint.
    const std::string piped = runScenario(s, 4);
    EXPECT_EQ(got, piped)
        << "--run-threads 4 diverged from the serial shared-LLC dump";
}

} // namespace
} // namespace slip
