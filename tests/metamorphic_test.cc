/**
 * @file
 * Metamorphic invariant tests over the statistics the paper's figures
 * are rendered from. Unlike the golden fixtures (which pin exact
 * values), these check relations that must hold for *any* correct
 * simulation, so they survive intentional recalibrations:
 *
 *  - energy-breakdown components sum to the reported totals,
 *  - per-level hits + misses equal accesses (and the per-sublevel
 *    splits sum to the level totals),
 *  - an inclusive L3 never leaves an L1/L2 line without an L3 copy,
 *  - sweep results are identical for any --jobs value,
 *  - one simulation is byte-identical for any --run-threads value.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/epoch_series.hh"
#include "obs/metrics.hh"
#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "sweep/sweep_runner.hh"
#include "workloads/spec_suite.hh"

namespace slip {
namespace {

constexpr std::uint64_t kRefs = 30000;
constexpr std::uint64_t kWarmup = 30000;

System &
runSystem(System &sys, const std::string &benchmark)
{
    auto w = makeSpecWorkload(benchmark);
    sys.run({w.get()}, kRefs, kWarmup);
    return sys;
}

void
checkLevelCountInvariants(const std::string &what,
                          const CacheLevelStats &s)
{
    SCOPED_TRACE(what);
    // hits + misses == accesses, for demand and metadata traffic.
    EXPECT_EQ(s.demandHits + s.demandMisses(), s.demandAccesses);
    EXPECT_LE(s.demandHits, s.demandAccesses);
    EXPECT_LE(s.metadataHits, s.metadataAccesses);
    EXPECT_EQ(s.missesTotal(), (s.demandAccesses - s.demandHits) +
                                   (s.metadataAccesses - s.metadataHits));

    // Every sublevel-serviced hit is a demand hit. The remainder of
    // demandHits are writeback probes, which update a resident line
    // in place without a sublevel read.
    std::uint64_t sublevel_hits = 0;
    for (unsigned i = 0; i < kNumSublevels; ++i)
        sublevel_hits += s.sublevelHits[i];
    EXPECT_LE(sublevel_hits, s.demandHits);

    // Every insertion lands in exactly one sublevel and one class.
    std::uint64_t sublevel_ins = 0;
    for (unsigned i = 0; i < kNumSublevels; ++i)
        sublevel_ins += s.sublevelInsertions[i];
    EXPECT_EQ(sublevel_ins, s.insertions);
    std::uint64_t class_ins = 0;
    for (unsigned i = 0; i < s.insertClass.size(); ++i)
        class_ins += s.insertClass[i];
    EXPECT_EQ(class_ins, s.insertions + s.bypasses);
}

void
checkEnergyInvariants(System &sys)
{
    // Per-level totals are the sum of the category breakdown.
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        for (const CacheLevelStats *s :
             {&sys.l1(c).stats(), &sys.l2(c).stats()}) {
            double cat_sum = 0;
            for (double e : s->energyPj)
                cat_sum += e;
            EXPECT_DOUBLE_EQ(cat_sum, s->totalEnergyPj());
        }
    }

    // The full-system figure is the sum of its reported components.
    const double component_sum =
        sys.instructions() * sys.config().tech.corePjPerInstr +
        sys.l1EnergyPj() + sys.l2EnergyPj() + sys.l3EnergyPj() +
        sys.dram().energyPj();
    EXPECT_NEAR(sys.fullSystemEnergyPj(), component_sum,
                1e-9 * component_sum);
}

class MetamorphicPolicyTest
    : public ::testing::TestWithParam<PolicyKind>
{};

TEST_P(MetamorphicPolicyTest, CountAndEnergyInvariants)
{
    for (const std::string benchmark : {"soplex", "mcf", "lbm"}) {
        SCOPED_TRACE(benchmark);
        SystemConfig cfg;
        cfg.policy = GetParam();
        System sys(cfg);
        runSystem(sys, benchmark);

        for (unsigned c = 0; c < sys.numCores(); ++c) {
            checkLevelCountInvariants("l1", sys.l1(c).stats());
            checkLevelCountInvariants("l2", sys.l2(c).stats());
        }
        checkLevelCountInvariants("l3", sys.l3().stats());
        checkEnergyInvariants(sys);
        sys.checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MetamorphicPolicyTest,
    ::testing::Values(PolicyKind::Baseline, PolicyKind::NuRapid,
                      PolicyKind::LruPea, PolicyKind::Slip,
                      PolicyKind::SlipAbp),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string name(policyName(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** Inclusive L3: no valid L1/L2 line without an L3 copy at the end of
 *  a run (back-invalidations must have kept the hierarchy inclusive). */
TEST(MetamorphicInclusionTest, InclusiveL3HoldsAtEpochBoundary)
{
    for (PolicyKind policy : {PolicyKind::Baseline, PolicyKind::Slip}) {
        SCOPED_TRACE(policyName(policy));
        SystemConfig cfg;
        cfg.policy = policy;
        cfg.inclusiveL3 = true;
        System sys(cfg);
        runSystem(sys, "soplex");

        std::uint64_t upper_lines = 0;
        for (unsigned c = 0; c < sys.numCores(); ++c) {
            for (CacheLevel *lvl : {&sys.l1(c), &sys.l2(c)}) {
                for (unsigned s = 0; s < lvl->numSets(); ++s) {
                    for (unsigned w = 0; w < lvl->numWays(); ++w) {
                        const CacheLine &ln = lvl->lineAt(s, w);
                        if (!ln.valid)
                            continue;
                        ++upper_lines;
                        EXPECT_TRUE(sys.l3().peek(ln.tag).hit)
                            << lvl->name() << " holds line 0x"
                            << std::hex << ln.tag
                            << " absent from the inclusive L3";
                    }
                }
            }
        }
        EXPECT_GT(upper_lines, 0u) << "vacuous inclusion check";
    }
}

/** The paper's figures must not depend on the sweep's parallelism:
 *  any --jobs value yields byte-identical results. */
TEST(MetamorphicJobsTest, ResultsIdenticalForAnyJobsValue)
{
    SweepOptions opts;
    opts.refs = kRefs;
    opts.warmup = kWarmup;

    std::vector<RunSpec> specs;
    for (const std::string b : {"soplex", "mcf", "milc", "bzip2"})
        for (PolicyKind p : {PolicyKind::Baseline, PolicyKind::Slip})
            specs.push_back(RunSpec::single(b, p, opts));
    specs.push_back(
        RunSpec::mix("soplex", "mcf", PolicyKind::Slip, opts));

    std::vector<std::string> reference;
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner runner(jobs, ResultCache::disabled());
        std::vector<std::shared_future<RunResult>> futs;
        for (const auto &s : specs)
            futs.push_back(runner.enqueue(s));
        std::vector<std::string> serialized;
        for (auto &f : futs)
            serialized.push_back(runResultToString(f.get()));
        if (reference.empty()) {
            reference = serialized;
        } else {
            for (std::size_t i = 0; i < specs.size(); ++i)
                EXPECT_EQ(reference[i], serialized[i])
                    << specs[i].label() << " diverged at jobs=" << jobs;
        }
    }
}

/** Full stats dump plus epoch-series JSON of one run of @p cfg at
 *  @p run_threads. The epoch series rides along so the byte-identity
 *  check also covers the --epoch-interval output that run reports
 *  embed — the sharded pipeline must roll epochs at the same merged
 *  reference ticks the serial loop does. */
std::string
dumpAtThreads(SystemConfig cfg, unsigned run_threads,
              const std::vector<std::string> &benchmarks)
{
    cfg.runThreads = run_threads;
    cfg.epochIntervalRefs = 5000;
    System sys(cfg);
    obs::EpochSeries series;
    series.intervalRefs = cfg.epochIntervalRefs;
    sys.setEpochSink(&series);
    std::vector<std::unique_ptr<AccessSource>> owned;
    std::vector<AccessSource *> sources;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const std::string &b =
            benchmarks.size() == 1 ? benchmarks[0] : benchmarks[c];
        owned.push_back(makeMixSource(b, c));
        sources.push_back(owned.back().get());
    }
    sys.run(sources, kRefs, kWarmup);
    sys.setEpochSink(nullptr);
    EXPECT_GT(series.records.size(), 1u) << "vacuous epoch check";
    std::ostringstream os;
    dumpStats(sys, os);
    os << obs::epochSeriesJson(series).dump() << '\n';
    return os.str();
}

/** The classic private-L1 front levels of canonicalScenarios'
 *  hier2_flat_llc, spelled programmatically. */
LevelSpec
privateLevel(const char *name, std::size_t size_kb, unsigned ways,
             const char *energy)
{
    LevelSpec l;
    l.name = name;
    l.sizeBytes = size_kb * 1024;
    l.ways = ways;
    l.isPrivate = true;
    l.inclusive = Tri::Off;
    l.policy = "baseline";
    l.energy = energy;
    l.latency = 4;
    const unsigned q = ways / 4;
    l.sublevelWays = {q, q, ways - 2 * q};
    l.waysPerRow = q;
    return l;
}

/**
 * One simulation must be byte-identical for any intra-run thread
 * count, across both pipeline modes (TLB-only front end for SLIP and
 * inclusive hierarchies; full private-walk front end for baseline
 * ones) and 2-/3-/4-level shapes.
 */
TEST(MetamorphicRunThreadsTest, DumpIdenticalForAnyThreadCount)
{
    // Cause-ledger deltas only accumulate with metrics on, so enable
    // collection (as --report does) for the epoch-series comparison;
    // restored below — observation never changes outcomes.
    const bool metrics_before = obs::metricsEnabled();
    obs::setMetricsEnabled(true);

    struct Case
    {
        const char *what;
        SystemConfig cfg;
        std::vector<std::string> benchmarks;
    };
    std::vector<Case> cases;

    {
        // 3-level SLIP, one core: the TLB-front pipeline mode.
        Case c{"slip_3level_1core", SystemConfig{}, {"soplex"}};
        c.cfg.policy = PolicyKind::Slip;
        cases.push_back(c);
    }
    {
        // 3-level baseline, four cores: the full-front pipeline mode
        // with private L1+L2 walks on the worker threads.
        Case c{"baseline_3level_4cores", SystemConfig{}, {"soplex"}};
        c.cfg.policy = PolicyKind::Baseline;
        c.cfg.numCores = 4;
        cases.push_back(c);
    }
    {
        // Inclusive LLC forces the TLB-front mode (back-invalidations
        // reach into the private levels) on a two-core mix.
        Case c{"slip_abp_inclusive_2cores", SystemConfig{},
               {"soplex", "mcf"}};
        c.cfg.policy = PolicyKind::SlipAbp;
        c.cfg.inclusiveL3 = true;
        c.cfg.numCores = 2;
        cases.push_back(c);
    }
    {
        // 2-level baseline: the shortest full-front hierarchy.
        Case c{"baseline_2level_2cores", SystemConfig{},
               {"mcf", "lbm"}};
        c.cfg.policy = PolicyKind::Baseline;
        c.cfg.numCores = 2;
        c.cfg.hierarchy.levels.push_back(
            privateLevel("l1", 32, 8, "l1"));
        LevelSpec llc;
        llc.name = "llc";
        llc.sizeBytes = 1024 * 1024;
        llc.ways = 16;
        llc.isPrivate = false;
        llc.energy = "l3";
        c.cfg.hierarchy.levels.push_back(llc);
        cases.push_back(c);
    }
    {
        // 4-level with SLIP at L2 and the LLC (hier4_deep's shape):
        // multiple SLIP levels in the TLB-front mode.
        Case c{"slip_4level_1core", SystemConfig{}, {"soplex"}};
        c.cfg.policy = PolicyKind::Baseline;
        c.cfg.hierarchy = HierarchySpec::classic();
        c.cfg.hierarchy.levels[1].policy = "slip";
        LevelSpec l3 = privateLevel("l3", 1024, 16, "l2");
        c.cfg.hierarchy.levels.insert(
            c.cfg.hierarchy.levels.begin() + 2, l3);
        c.cfg.hierarchy.levels[3].name = "l4";
        c.cfg.hierarchy.levels[3].policy = "slip";
        c.cfg.hierarchy.levels[3].sizeBytes = 4 * 1024 * 1024;
        cases.push_back(c);
    }

    for (const Case &c : cases) {
        SCOPED_TRACE(c.what);
        const std::string serial = dumpAtThreads(c.cfg, 1, c.benchmarks);
        for (unsigned threads : {2u, 4u}) {
            EXPECT_EQ(serial, dumpAtThreads(c.cfg, threads,
                                            c.benchmarks))
                << c.what << " diverged at run_threads=" << threads;
        }
    }
    obs::setMetricsEnabled(metrics_before);
}

} // namespace
} // namespace slip
