/**
 * @file
 * Metamorphic invariant tests over the statistics the paper's figures
 * are rendered from. Unlike the golden fixtures (which pin exact
 * values), these check relations that must hold for *any* correct
 * simulation, so they survive intentional recalibrations:
 *
 *  - energy-breakdown components sum to the reported totals,
 *  - per-level hits + misses equal accesses (and the per-sublevel
 *    splits sum to the level totals),
 *  - an inclusive L3 never leaves an L1/L2 line without an L3 copy,
 *  - sweep results are identical for any --jobs value.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sweep/sweep_runner.hh"
#include "workloads/spec_suite.hh"

namespace slip {
namespace {

constexpr std::uint64_t kRefs = 30000;
constexpr std::uint64_t kWarmup = 30000;

System &
runSystem(System &sys, const std::string &benchmark)
{
    auto w = makeSpecWorkload(benchmark);
    sys.run({w.get()}, kRefs, kWarmup);
    return sys;
}

void
checkLevelCountInvariants(const std::string &what,
                          const CacheLevelStats &s)
{
    SCOPED_TRACE(what);
    // hits + misses == accesses, for demand and metadata traffic.
    EXPECT_EQ(s.demandHits + s.demandMisses(), s.demandAccesses);
    EXPECT_LE(s.demandHits, s.demandAccesses);
    EXPECT_LE(s.metadataHits, s.metadataAccesses);
    EXPECT_EQ(s.missesTotal(), (s.demandAccesses - s.demandHits) +
                                   (s.metadataAccesses - s.metadataHits));

    // Every sublevel-serviced hit is a demand hit. The remainder of
    // demandHits are writeback probes, which update a resident line
    // in place without a sublevel read.
    std::uint64_t sublevel_hits = 0;
    for (unsigned i = 0; i < kNumSublevels; ++i)
        sublevel_hits += s.sublevelHits[i];
    EXPECT_LE(sublevel_hits, s.demandHits);

    // Every insertion lands in exactly one sublevel and one class.
    std::uint64_t sublevel_ins = 0;
    for (unsigned i = 0; i < kNumSublevels; ++i)
        sublevel_ins += s.sublevelInsertions[i];
    EXPECT_EQ(sublevel_ins, s.insertions);
    std::uint64_t class_ins = 0;
    for (unsigned i = 0; i < s.insertClass.size(); ++i)
        class_ins += s.insertClass[i];
    EXPECT_EQ(class_ins, s.insertions + s.bypasses);
}

void
checkEnergyInvariants(System &sys)
{
    // Per-level totals are the sum of the category breakdown.
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        for (const CacheLevelStats *s :
             {&sys.l1(c).stats(), &sys.l2(c).stats()}) {
            double cat_sum = 0;
            for (double e : s->energyPj)
                cat_sum += e;
            EXPECT_DOUBLE_EQ(cat_sum, s->totalEnergyPj());
        }
    }

    // The full-system figure is the sum of its reported components.
    const double component_sum =
        sys.instructions() * sys.config().tech.corePjPerInstr +
        sys.l1EnergyPj() + sys.l2EnergyPj() + sys.l3EnergyPj() +
        sys.dram().energyPj();
    EXPECT_NEAR(sys.fullSystemEnergyPj(), component_sum,
                1e-9 * component_sum);
}

class MetamorphicPolicyTest
    : public ::testing::TestWithParam<PolicyKind>
{};

TEST_P(MetamorphicPolicyTest, CountAndEnergyInvariants)
{
    for (const std::string benchmark : {"soplex", "mcf", "lbm"}) {
        SCOPED_TRACE(benchmark);
        SystemConfig cfg;
        cfg.policy = GetParam();
        System sys(cfg);
        runSystem(sys, benchmark);

        for (unsigned c = 0; c < sys.numCores(); ++c) {
            checkLevelCountInvariants("l1", sys.l1(c).stats());
            checkLevelCountInvariants("l2", sys.l2(c).stats());
        }
        checkLevelCountInvariants("l3", sys.l3().stats());
        checkEnergyInvariants(sys);
        sys.checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MetamorphicPolicyTest,
    ::testing::Values(PolicyKind::Baseline, PolicyKind::NuRapid,
                      PolicyKind::LruPea, PolicyKind::Slip,
                      PolicyKind::SlipAbp),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string name(policyName(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** Inclusive L3: no valid L1/L2 line without an L3 copy at the end of
 *  a run (back-invalidations must have kept the hierarchy inclusive). */
TEST(MetamorphicInclusionTest, InclusiveL3HoldsAtEpochBoundary)
{
    for (PolicyKind policy : {PolicyKind::Baseline, PolicyKind::Slip}) {
        SCOPED_TRACE(policyName(policy));
        SystemConfig cfg;
        cfg.policy = policy;
        cfg.inclusiveL3 = true;
        System sys(cfg);
        runSystem(sys, "soplex");

        std::uint64_t upper_lines = 0;
        for (unsigned c = 0; c < sys.numCores(); ++c) {
            for (CacheLevel *lvl : {&sys.l1(c), &sys.l2(c)}) {
                for (unsigned s = 0; s < lvl->numSets(); ++s) {
                    for (unsigned w = 0; w < lvl->numWays(); ++w) {
                        const CacheLine &ln = lvl->lineAt(s, w);
                        if (!ln.valid)
                            continue;
                        ++upper_lines;
                        EXPECT_TRUE(sys.l3().peek(ln.tag).hit)
                            << lvl->name() << " holds line 0x"
                            << std::hex << ln.tag
                            << " absent from the inclusive L3";
                    }
                }
            }
        }
        EXPECT_GT(upper_lines, 0u) << "vacuous inclusion check";
    }
}

/** The paper's figures must not depend on the sweep's parallelism:
 *  any --jobs value yields byte-identical results. */
TEST(MetamorphicJobsTest, ResultsIdenticalForAnyJobsValue)
{
    SweepOptions opts;
    opts.refs = kRefs;
    opts.warmup = kWarmup;

    std::vector<RunSpec> specs;
    for (const std::string b : {"soplex", "mcf", "milc", "bzip2"})
        for (PolicyKind p : {PolicyKind::Baseline, PolicyKind::Slip})
            specs.push_back(RunSpec::single(b, p, opts));
    specs.push_back(
        RunSpec::mix("soplex", "mcf", PolicyKind::Slip, opts));

    std::vector<std::string> reference;
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner runner(jobs, ResultCache::disabled());
        std::vector<std::shared_future<RunResult>> futs;
        for (const auto &s : specs)
            futs.push_back(runner.enqueue(s));
        std::vector<std::string> serialized;
        for (auto &f : futs)
            serialized.push_back(runResultToString(f.get()));
        if (reference.empty()) {
            reference = serialized;
        } else {
            for (std::size_t i = 0; i < specs.size(); ++i)
                EXPECT_EQ(reference[i], serialized[i])
                    << specs[i].label() << " diverged at jobs=" << jobs;
        }
    }
}

} // namespace
} // namespace slip
