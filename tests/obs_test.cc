/**
 * @file
 * Tests of the src/obs/ observability subsystem: registry gating and
 * bucketing, the energy-attribution ledger's sums-to-totals invariant,
 * golden-stats invariance with observation attached, the Chrome trace
 * schema, epoch series accounting, result-cache counters, and the
 * disabled-path overhead budget against BENCH_core.json.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <unistd.h>

#include "obs/energy_ledger.hh"
#include "obs/epoch_series.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "sweep/result_cache.hh"
#include "sweep/run_result.hh"
#include "util/json.hh"
#include "workloads/spec_suite.hh"

namespace slip {
namespace {

/** Every test starts and ends with observability fully off and clean. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { disarm(); }
    void TearDown() override { disarm(); }

    static void disarm()
    {
        obs::setMetricsEnabled(false);
        obs::setTraceEnabled(false);
        obs::resetMetrics();
        obs::resetTrace();
        obs::setRunObservation(obs::RunObservation{});
        obs::takeEpochSeries();
    }

    /** Relative-tolerance near-equality for accumulated picojoules. */
    static void expectNearRel(double a, double b, const char *what)
    {
        const double tol =
            1e-9 * std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
        EXPECT_NEAR(a, b, tol) << what;
    }

    static double sumSegments(const CacheLevelStats &s)
    {
        double total = 0;
        for (double pj : s.energyPj)
            total += pj;
        return total;
    }
};

TEST_F(ObsTest, InstrumentsAreGatedOnEnableFlag)
{
    obs::Counter &c = obs::counter("obs_test.ctr");
    obs::Gauge &g = obs::gauge("obs_test.gauge");
    obs::Histogram &h = obs::histogram("obs_test.hist");

    c.add(5);
    g.set(7);
    h.record(3);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);

    obs::setMetricsEnabled(true);
    c.add(5);
    g.set(7);
    h.record(3);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.value(), 7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 3u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences)
{
    obs::Counter &a = obs::counter("obs_test.stable");
    obs::Counter &b = obs::counter("obs_test.stable");
    EXPECT_EQ(&a, &b);
}

TEST_F(ObsTest, HistogramLog2Buckets)
{
    EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(obs::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketOf(4), 3u);
    EXPECT_EQ(obs::Histogram::bucketOf(~0ull),
              obs::Histogram::kNumBuckets - 1);
    EXPECT_EQ(obs::Histogram::bucketHi(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketHi(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketHi(2), 3u);
    EXPECT_EQ(obs::Histogram::bucketHi(3), 7u);

    obs::setMetricsEnabled(true);
    obs::Histogram &h = obs::histogram("obs_test.buckets");
    h.record(0);
    h.record(1);
    h.record(6);
    h.record(7);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.count(), 4u);
}

TEST_F(ObsTest, MetricsJsonSchemaAndReset)
{
    obs::setMetricsEnabled(true);
    obs::counter("obs_test.json_ctr").add(3);
    obs::histogram("obs_test.json_hist").record(5);

    json::Value snap = obs::metricsJson();
    const json::Value *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);
    const json::Value *ctr = counters->find("obs_test.json_ctr");
    ASSERT_NE(ctr, nullptr);
    EXPECT_EQ(ctr->asU64(), 3u);
    const json::Value *hists = snap.find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value *hist = hists->find("obs_test.json_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->asU64(), 1u);

    // The dump round-trips through our own parser.
    json::Value back;
    std::string err;
    ASSERT_TRUE(json::Value::parse(snap.dump(), back, &err)) << err;
    EXPECT_EQ(back.dump(), snap.dump());

    obs::resetMetrics();
    EXPECT_EQ(obs::counter("obs_test.json_ctr").value(), 0u);
}

/**
 * The tentpole invariant: with metrics enabled, every picojoule a
 * cache level charges lands in exactly one ledger cause, so the
 * per-cause ledger sums to the per-wire-segment totals (the numbers
 * the golden stats assert). Same for DRAM's demand/metadata split.
 */
TEST_F(ObsTest, EnergyLedgerSumsToGoldenTotals)
{
    obs::setMetricsEnabled(true);

    SweepOptions opts;
    opts.refs = 40000;
    opts.warmup = 20000;
    const RunSpec spec =
        RunSpec::single("mcf", PolicyKind::SlipAbp, opts);
    const RunResult r = executeRun(spec);

    EXPECT_GT(obs::ledgerTotal(r.l2.causePj), 0.0);
    EXPECT_GT(obs::ledgerTotal(r.l3.causePj), 0.0);
    expectNearRel(obs::ledgerTotal(r.l2.causePj), sumSegments(r.l2),
                  "l2 ledger vs segment totals");
    expectNearRel(obs::ledgerTotal(r.l3.causePj), sumSegments(r.l3),
                  "l3 ledger vs segment totals");
    expectNearRel(r.dramDemandPj + r.dramMetadataPj, r.dramEnergyPj,
                  "dram demand+metadata vs total");
}

/**
 * Observation must never perturb simulation: the full stats dump is
 * byte-identical whether the run executed with metrics, tracing, and
 * an epoch sink attached or with everything off (the registry is
 * compiled in either way).
 */
TEST_F(ObsTest, GoldenStatsInvariantUnderObservation)
{
    auto dumpOnce = [](bool observed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::SlipAbp;
        obs::EpochSeries series;
        System sys(cfg);
        if (observed) {
            obs::setMetricsEnabled(true);
            obs::setTraceEnabled(true);
            sys.setTracePid(obs::tracePidFor("obs_test.golden"));
            sys.setEpochSink(&series);
        }
        auto w = makeSpecWorkload("soplex");
        sys.run({w.get()}, 30000, 10000);
        std::ostringstream os;
        dumpStats(sys, os);
        return os.str();
    };

    const std::string observed = dumpOnce(true);
    disarm();
    const std::string plain = dumpOnce(false);
    EXPECT_EQ(observed, plain);
}

TEST_F(ObsTest, TraceChromeJsonSchema)
{
    obs::setTraceEnabled(true);

    SystemConfig cfg;
    cfg.policy = PolicyKind::SlipAbp;
    cfg.epochIntervalRefs = 5000;
    System sys(cfg);
    const std::uint64_t pid = obs::tracePidFor("obs_test.trace");
    obs::registerTraceProcess(pid, "obs_test.trace");
    sys.setTracePid(pid);
    auto w = makeSpecWorkload("mcf");
    sys.run({w.get()}, 30000, 10000);

    json::Value root = obs::traceJson();
    ASSERT_TRUE(root.find("traceEvents"));
    EXPECT_TRUE(root.find("displayTimeUnit"));
    const json::Value &events = *root.find("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.size(), 0u);

    bool saw_eou = false, saw_epoch = false, saw_process = false;
    std::uint64_t last_ts = 0;
    for (const json::Value &ev : events.elements()) {
        // The Chrome trace-event required keys, on every event.
        for (const char *key : {"ph", "ts", "pid", "tid", "name"})
            ASSERT_NE(ev.find(key), nullptr) << key;
        const std::string ph = ev.find("ph")->asString();
        const std::string name = ev.find("name")->asString();
        ASSERT_TRUE(ph == "M" || ph == "i") << ph;
        if (ph == "M") {
            saw_process |= name == "process_name";
            continue;
        }
        // Perfetto wants a scope on instant events.
        ASSERT_NE(ev.find("s"), nullptr);
        EXPECT_EQ(ev.find("pid")->asU64(), pid);
        const std::uint64_t ts = ev.find("ts")->asU64();
        EXPECT_GE(ts, last_ts) << "events must be time-sorted";
        last_ts = ts;
        saw_eou |= name == "eou_decision";
        saw_epoch |= name == "epoch_rollover";
    }
    EXPECT_TRUE(saw_process);
    EXPECT_TRUE(saw_eou);
    EXPECT_TRUE(saw_epoch);

    // The serialized form round-trips through our parser.
    std::ostringstream os;
    obs::writeChromeJson(os);
    json::Value back;
    std::string err;
    EXPECT_TRUE(json::Value::parse(os.str(), back, &err)) << err;
}

/** Epoch deltas must add back up to the whole-run ledger. */
TEST_F(ObsTest, EpochSeriesSumsToRunLedger)
{
    obs::setMetricsEnabled(true);
    obs::RunObservation watch;
    watch.collectEpochs = true;
    watch.epochIntervalRefs = 5000;
    obs::setRunObservation(watch);

    SweepOptions opts;
    opts.refs = 30000;
    opts.warmup = 10000;
    const RunSpec spec = RunSpec::single("mcf", PolicyKind::Slip, opts);
    const RunResult r = executeRun(spec);

    const auto all = obs::takeEpochSeries();
    ASSERT_EQ(all.size(), 1u);
    const obs::EpochSeries &series = all[0];
    EXPECT_EQ(series.label, spec.key());
    EXPECT_EQ(series.intervalRefs, watch.epochIntervalRefs);
    ASSERT_GT(series.records.size(), 1u);

    obs::EnergyLedger l2_sum{};
    std::uint64_t accesses = 0;
    std::uint64_t prev_end = 0;
    for (std::size_t i = 0; i < series.records.size(); ++i) {
        const obs::EpochRecord &e = series.records[i];
        EXPECT_EQ(e.index, i);
        EXPECT_GT(e.endTick, prev_end);
        prev_end = e.endTick;
        accesses += e.accesses;
        const auto l2 = std::find_if(
            e.levels.begin(), e.levels.end(),
            [](const obs::LevelEpoch &lvl) { return lvl.name == "l2"; });
        ASSERT_NE(l2, e.levels.end());
        obs::ledgerMerge(l2_sum, l2->pj);
    }
    // Epochs only cover the measurement window (stats reset after
    // warm-up), so access counts and ledger deltas must reconstruct
    // the run totals exactly.
    EXPECT_EQ(accesses, opts.refs);
    expectNearRel(obs::ledgerTotal(l2_sum),
                  obs::ledgerTotal(r.l2.causePj),
                  "epoch l2 deltas vs run ledger");
}

TEST_F(ObsTest, ResultCacheCountsHitsMissesStoresAndCorruption)
{
    const std::string dir =
        ::testing::TempDir() + "obs_test_cache_" +
        std::to_string(::getpid());
    ResultCache cache(dir);

    RunResult r;
    r.l1EnergyPj = 42.0;
    RunResult out;
    EXPECT_FALSE(cache.lookup("k", out));
    cache.store("k", r);
    EXPECT_TRUE(cache.lookup("k", out));
    EXPECT_EQ(out.l1EnergyPj, 42.0);

    // A truncated entry (no end marker) counts as corrupt, not as a
    // zero-valued result.
    {
        std::ofstream os(dir + "/bad");
        os << "l1pj 1.0\n";
    }
    EXPECT_FALSE(cache.lookup("bad", out));

    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.stores, 1u);
    EXPECT_EQ(st.corrupt, 1u);

    std::filesystem::remove_all(dir);
}

/**
 * Disabled-path budget: an instrumented site costs one relaxed load
 * and an untaken branch. Against the reference per-access time
 * recorded in BENCH_core.json, a generous per-access allowance of
 * gated sites must stay under 2% — the contract that lets the
 * instrumentation live compiled into the hot path's branches.
 */
TEST_F(ObsTest, DisabledPathUnderTwoPercentOfReferenceAccessTime)
{
    std::ifstream is(SLIP_BENCH_CORE_JSON);
    if (!is)
        GTEST_SKIP() << "BENCH_core.json not found";
    std::ostringstream buf;
    buf << is.rdbuf();
    json::Value bench;
    std::string err;
    ASSERT_TRUE(json::Value::parse(buf.str(), bench, &err)) << err;

    // Reference cost of one simulated access on the recording host.
    const json::Value *cfg = bench.find("config");
    const json::Value *after = bench.find("after");
    ASSERT_TRUE(cfg && after);
    const double refs = cfg->find("SLIP_BENCH_REFS")->asDouble();
    const double runs = cfg->find("distinct_runs")->asDouble();
    const json::Value *walls =
        after->find("same_day_paired_wall_seconds");
    ASSERT_TRUE(walls && walls->isArray() && walls->size() > 0);
    double wall = 0;
    for (const json::Value &w : walls->elements())
        wall += w.asDouble();
    wall /= double(walls->size());
    // Each run simulates refs measured + refs warm-up accesses.
    const double per_access_ns = wall * 1e9 / (runs * 2.0 * refs);
    ASSERT_GT(per_access_ns, 0.0);

    // Measured cost of one disabled gated instrument. Best of several
    // trials: the suite runs under ctest -j alongside CPU-heavy tests,
    // and a single trial can be inflated by a descheduling blip; the
    // minimum is the contention-free cost we are bounding.
    ASSERT_FALSE(obs::metricsEnabled());
    obs::Counter &c = obs::counter("obs_test.overhead");
    constexpr std::uint64_t kIters = 4'000'000;
    constexpr int kTrials = 5;
    double per_gate_ns = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < kIters; ++i)
            c.add();
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            double(kIters);
        per_gate_ns = std::min(per_gate_ns, ns);
    }
    EXPECT_EQ(c.value(), 0u);

    // The per-access hot path crosses at most a handful of gates (L1
    // hit charge, epoch check, and amortized miss-path sites).
    constexpr double kGatesPerAccess = 4.0;
    const double overhead = kGatesPerAccess * per_gate_ns;
    EXPECT_LT(overhead, 0.02 * per_access_ns)
        << per_gate_ns << " ns/gate against " << per_access_ns
        << " ns/access";
}

} // namespace
} // namespace slip
