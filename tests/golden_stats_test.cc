/**
 * @file
 * Golden-reference regression tests: every SPEC-suite workload is
 * simulated under the Baseline and Slip policies at a reduced
 * reference length and the full stats dump is compared byte-for-byte
 * against fixtures checked into tests/golden/.
 *
 * The fixtures were generated from the tree *before* the hot-path
 * rewrite of the per-access simulation loop, so these tests are the
 * proof that the rewrite changed no simulated outcome. When a
 * behaviour change is intentional, regenerate with
 *
 *   SLIP_GOLDEN_REGEN=1 ./tests/golden_stats_test
 *
 * and commit the updated fixtures together with the change that
 * explains them (see EXPERIMENTS.md, "Profiling and regression
 * fixtures").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "workloads/spec_suite.hh"

#ifndef SLIP_GOLDEN_DIR
#error "SLIP_GOLDEN_DIR must point at tests/golden"
#endif

namespace slip {
namespace {

/** Reduced reference counts: large enough to exercise sampling-state
 *  transitions, TLB pressure, and both EOUs; small enough that all 28
 *  runs finish in seconds. */
constexpr std::uint64_t kGoldenRefs = 40000;
constexpr std::uint64_t kGoldenWarmup = 40000;

std::string
fixturePath(const std::string &benchmark, PolicyKind policy)
{
    return std::string(SLIP_GOLDEN_DIR) + "/" + benchmark + "." +
           policyName(policy) + ".txt";
}

/** FNV-1a, printed on mismatch so CI logs identify fixture versions. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
simulate(const std::string &benchmark, PolicyKind policy,
         unsigned run_threads = 1)
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.runThreads = run_threads;
    auto w = makeSpecWorkload(benchmark);
    System sys(cfg);
    sys.run({w.get()}, kGoldenRefs, kGoldenWarmup);
    std::ostringstream os;
    dumpStats(sys, os);
    return os.str();
}

/** Line-by-line diff capped at @p max_lines reported differences. */
std::string
readableDiff(const std::string &want, const std::string &got,
             unsigned max_lines = 12)
{
    std::istringstream ws(want), gs(got);
    std::string wl, gl, out;
    unsigned lineno = 0, shown = 0;
    while (shown < max_lines) {
        const bool wok = static_cast<bool>(std::getline(ws, wl));
        const bool gok = static_cast<bool>(std::getline(gs, gl));
        ++lineno;
        if (!wok && !gok)
            break;
        if (!wok)
            wl = "<end of fixture>";
        if (!gok)
            gl = "<end of output>";
        if (wl != gl) {
            out += "  line " + std::to_string(lineno) + ":\n";
            out += "    fixture: " + wl + "\n";
            out += "    got:     " + gl + "\n";
            ++shown;
        }
        if (!wok || !gok)
            break;
    }
    return out.empty() ? std::string("  (no line differences?)") : out;
}

class GoldenStatsTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, PolicyKind>>
{};

TEST_P(GoldenStatsTest, MatchesFixture)
{
    const std::string &benchmark = std::get<0>(GetParam());
    const PolicyKind policy = std::get<1>(GetParam());
    const std::string path = fixturePath(benchmark, policy);
    const std::string got = simulate(benchmark, policy);

    if (std::getenv("SLIP_GOLDEN_REGEN")) {
        std::ofstream os(path, std::ios::binary);
        ASSERT_TRUE(os.good()) << "cannot write fixture " << path;
        os << got;
        ASSERT_TRUE(os.good()) << "short write to " << path;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good())
        << "missing fixture " << path
        << " — run SLIP_GOLDEN_REGEN=1 ./tests/golden_stats_test";
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string want = buf.str();

    EXPECT_EQ(want, got)
        << "stats dump diverged from golden fixture " << path << "\n"
        << "  fixture fnv1a: " << std::hex << fnv1a(want) << "\n"
        << "  output  fnv1a: " << fnv1a(got) << std::dec << "\n"
        << readableDiff(want, got);

    // The pipelined run (--run-threads) is an execution strategy, not
    // a configuration: every fixture must also hold at 4 threads.
    const std::string piped = simulate(benchmark, policy, 4);
    EXPECT_EQ(want, piped)
        << "run_threads=4 diverged from the serial dump for " << path
        << "\n"
        << readableDiff(want, piped);
}

std::vector<std::tuple<std::string, PolicyKind>>
goldenCases()
{
    std::vector<std::tuple<std::string, PolicyKind>> cases;
    for (const auto &b : specBenchmarks())
        for (PolicyKind p : {PolicyKind::Baseline, PolicyKind::Slip})
            cases.emplace_back(b, p);
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<
         std::tuple<std::string, PolicyKind>> &info)
{
    std::string n = std::get<0>(info.param);
    for (char &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n + "_" + policyName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(SpecSuite, GoldenStatsTest,
                         ::testing::ValuesIn(goldenCases()), caseName);

/** The suite must cover exactly the paper's 14 workloads; a new
 *  benchmark must come with a fixture. */
TEST(GoldenStatsTest, CoversFourteenWorkloads)
{
    EXPECT_EQ(specBenchmarks().size(), 14u);
}

} // namespace
} // namespace slip
