/**
 * @file
 * Golden-reference regression tests: every SPEC-suite workload is
 * simulated under the Baseline and Slip policies at a reduced
 * reference length and the full stats dump is compared byte-for-byte
 * against fixtures checked into tests/golden/.
 *
 * The fixtures were generated from the tree *before* the hot-path
 * rewrite of the per-access simulation loop, so these tests are the
 * proof that the rewrite changed no simulated outcome. When a
 * behaviour change is intentional, regenerate with
 *
 *   SLIP_GOLDEN_REGEN=1 ./tests/golden_stats_test
 *
 * and commit the updated fixtures together with the change that
 * explains them (see EXPERIMENTS.md, "Profiling and regression
 * fixtures").
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "workloads/spec_suite.hh"
#include "workloads/trace_workload.hh"

#ifndef SLIP_GOLDEN_DIR
#error "SLIP_GOLDEN_DIR must point at tests/golden"
#endif

namespace slip {
namespace {

/** Reduced reference counts: large enough to exercise sampling-state
 *  transitions, TLB pressure, and both EOUs; small enough that all 28
 *  runs finish in seconds. */
constexpr std::uint64_t kGoldenRefs = 40000;
constexpr std::uint64_t kGoldenWarmup = 40000;

std::string
fixturePath(const std::string &benchmark, PolicyKind policy)
{
    return std::string(SLIP_GOLDEN_DIR) + "/" + benchmark + "." +
           policyName(policy) + ".txt";
}

/** FNV-1a, printed on mismatch so CI logs identify fixture versions. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
simulate(const std::string &benchmark, PolicyKind policy,
         unsigned run_threads = 1)
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.runThreads = run_threads;
    auto w = makeSpecWorkload(benchmark);
    System sys(cfg);
    sys.run({w.get()}, kGoldenRefs, kGoldenWarmup);
    std::ostringstream os;
    dumpStats(sys, os);
    return os.str();
}

/** Line-by-line diff capped at @p max_lines reported differences. */
std::string
readableDiff(const std::string &want, const std::string &got,
             unsigned max_lines = 12)
{
    std::istringstream ws(want), gs(got);
    std::string wl, gl, out;
    unsigned lineno = 0, shown = 0;
    while (shown < max_lines) {
        const bool wok = static_cast<bool>(std::getline(ws, wl));
        const bool gok = static_cast<bool>(std::getline(gs, gl));
        ++lineno;
        if (!wok && !gok)
            break;
        if (!wok)
            wl = "<end of fixture>";
        if (!gok)
            gl = "<end of output>";
        if (wl != gl) {
            out += "  line " + std::to_string(lineno) + ":\n";
            out += "    fixture: " + wl + "\n";
            out += "    got:     " + gl + "\n";
            ++shown;
        }
        if (!wok || !gok)
            break;
    }
    return out.empty() ? std::string("  (no line differences?)") : out;
}

class GoldenStatsTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, PolicyKind>>
{};

TEST_P(GoldenStatsTest, MatchesFixture)
{
    const std::string &benchmark = std::get<0>(GetParam());
    const PolicyKind policy = std::get<1>(GetParam());
    const std::string path = fixturePath(benchmark, policy);
    const std::string got = simulate(benchmark, policy);

    if (std::getenv("SLIP_GOLDEN_REGEN")) {
        std::ofstream os(path, std::ios::binary);
        ASSERT_TRUE(os.good()) << "cannot write fixture " << path;
        os << got;
        ASSERT_TRUE(os.good()) << "short write to " << path;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good())
        << "missing fixture " << path
        << " — run SLIP_GOLDEN_REGEN=1 ./tests/golden_stats_test";
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string want = buf.str();

    EXPECT_EQ(want, got)
        << "stats dump diverged from golden fixture " << path << "\n"
        << "  fixture fnv1a: " << std::hex << fnv1a(want) << "\n"
        << "  output  fnv1a: " << fnv1a(got) << std::dec << "\n"
        << readableDiff(want, got);

    // The pipelined run (--run-threads) is an execution strategy, not
    // a configuration: every fixture must also hold at 4 threads.
    const std::string piped = simulate(benchmark, policy, 4);
    EXPECT_EQ(want, piped)
        << "run_threads=4 diverged from the serial dump for " << path
        << "\n"
        << readableDiff(want, piped);
}

std::vector<std::tuple<std::string, PolicyKind>>
goldenCases()
{
    std::vector<std::tuple<std::string, PolicyKind>> cases;
    for (const auto &b : specBenchmarks())
        for (PolicyKind p : {PolicyKind::Baseline, PolicyKind::Slip})
            cases.emplace_back(b, p);
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<
         std::tuple<std::string, PolicyKind>> &info)
{
    std::string n = std::get<0>(info.param);
    for (char &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n + "_" + policyName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(SpecSuite, GoldenStatsTest,
                         ::testing::ValuesIn(goldenCases()), caseName);

/** The suite must cover exactly the paper's 14 workloads; a new
 *  benchmark must come with a fixture. */
TEST(GoldenStatsTest, CoversFourteenWorkloads)
{
    EXPECT_EQ(specBenchmarks().size(), 14u);
}

// ---------------------------------------------------------------------
// Trace ingestion goldens
// ---------------------------------------------------------------------

/** Run @p cores cores built by @p make, dump the stats. */
std::string
simulateSources(
    unsigned cores, unsigned run_threads,
    const std::function<std::unique_ptr<AccessSource>(unsigned)> &make,
    std::uint64_t refs, std::uint64_t warmup)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.runThreads = run_threads;
    System sys(cfg);
    std::vector<std::unique_ptr<AccessSource>> owned;
    std::vector<AccessSource *> sources;
    for (unsigned c = 0; c < cores; ++c) {
        owned.push_back(make(c));
        sources.push_back(owned.back().get());
    }
    sys.run(sources, refs, warmup);
    std::ostringstream os;
    dumpStats(sys, os);
    return os.str();
}

#ifdef SLIP_HAVE_ZLIB
/**
 * The checked-in compressed capture of the soplex generator
 * (tests/golden/soplex_capture.trc2.gz, warmup + measured references)
 * replayed through the `trace:` workload scheme must reproduce the
 * *generator's* golden fixture byte-for-byte — the fixture doubles as
 * a decoder regression (any SLIPTRC2/gzip decode change shows up as a
 * stats diff) and as the checked-in proof that capture-then-replay is
 * an identity. SLIP_GOLDEN_REGEN=1 re-captures it.
 */
TEST(TraceGoldenTest, CompressedCaptureReplaysToSoplexFixture)
{
    const std::string trace =
        std::string(SLIP_GOLDEN_DIR) + "/soplex_capture.trc2.gz";

    if (std::getenv("SLIP_GOLDEN_REGEN")) {
        const std::string err = captureWorkloadTrace(
            "soplex", 1, kGoldenRefs + kGoldenWarmup, 0, trace);
        ASSERT_EQ(err, "");
        GTEST_SKIP() << "regenerated " << trace;
    }

    ASSERT_TRUE(std::filesystem::exists(trace))
        << "missing fixture " << trace
        << " — run SLIP_GOLDEN_REGEN=1 ./tests/golden_stats_test";

    std::ifstream is(fixturePath("soplex", PolicyKind::Baseline),
                     std::ios::binary);
    ASSERT_TRUE(is.good());
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string want = buf.str();

    const auto makeCore = [&](unsigned c) {
        return makeMixSource("trace:" + trace, c);
    };
    const std::string got = simulateSources(1, 1, makeCore,
                                            kGoldenRefs, kGoldenWarmup);
    EXPECT_EQ(want, got)
        << "trace replay diverged from the generator fixture\n"
        << readableDiff(want, got);

    const std::string piped = simulateSources(
        1, 4, makeCore, kGoldenRefs, kGoldenWarmup);
    EXPECT_EQ(want, piped)
        << "run_threads=4 trace replay diverged\n"
        << readableDiff(want, piped);
}
#endif

/**
 * Metamorphic identity: capturing a synthetic workload and replaying
 * the capture through `trace:` yields byte-identical stats to running
 * the generator directly — single-core and multicore (per-core
 * demux), plain and gzip, serial and pipelined.
 */
class TraceMetamorphicTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TraceMetamorphicTest, CaptureReplayIsIdentity)
{
    const unsigned cores = GetParam();
    const std::uint64_t refs = 20000, warmup = 20000;

    const std::string reference = simulateSources(
        cores, 1,
        [&](unsigned c) { return makeMixSource("gcc", c, 0); }, refs,
        warmup);

    std::vector<std::string> paths;
    paths.push_back(
        (std::filesystem::temp_directory_path() /
         ("slip_meta_" + std::to_string(cores) + "c_" +
          std::to_string(::getpid()) + ".trc2"))
            .string());
#ifdef SLIP_HAVE_ZLIB
    paths.push_back(paths[0] + ".gz");
#endif
    for (const std::string &path : paths) {
        SCOPED_TRACE(path);
        ASSERT_EQ(captureWorkloadTrace("gcc", cores, refs + warmup, 0,
                                       path),
                  "");
        const auto makeCore = [&](unsigned c) {
            return makeMixSource("trace:" + path, c);
        };
        const std::string replayed =
            simulateSources(cores, 1, makeCore, refs, warmup);
        EXPECT_EQ(reference, replayed)
            << "trace replay diverged from the generator\n"
            << readableDiff(reference, replayed);
        const std::string piped =
            simulateSources(cores, 4, makeCore, refs, warmup);
        EXPECT_EQ(reference, piped)
            << "pipelined trace replay diverged\n"
            << readableDiff(reference, piped);
        std::filesystem::remove(path);
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, TraceMetamorphicTest,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &i) {
                             return std::to_string(i.param) + "core";
                         });

} // namespace
} // namespace slip
