/**
 * @file
 * Tests for the extension features: trace file I/O, the stats dump,
 * the inclusive-L3 mode (Section 4.3), rd-block granularity
 * (Section 7), and the drifting/sparse-reuse workload patterns.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "mem/trace_io.hh"
#include "sim/stats_dump.hh"
#include "sim/system.hh"
#include "workloads/benchmark.hh"
#include "workloads/spec_suite.hh"

namespace slip {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("slip_test_") + name + "_" +
             std::to_string(::getpid())))
        .string();
}

TEST(TraceIoTest, LegacyBinaryRoundTrip)
{
    const std::string path = tempPath("bin.trc");
    {
        std::string err;
        auto w =
            TraceWriter::create(path, TraceFormat::Sliptrc1, 1, &err);
        ASSERT_NE(w, nullptr) << err;
        w->append({0x1234, AccessType::Read});
        w->append({0xABCDEF00, AccessType::Write});
        EXPECT_EQ(w->written(), 2u);
        EXPECT_EQ(w->close(), "");
    }
    std::string err;
    auto src = TraceSource::open(path, 0, /*loop=*/false, &err);
    ASSERT_NE(src, nullptr) << err;
    EXPECT_EQ(src->info().format, TraceFormat::Sliptrc1);
    MemAccess a;
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x1234u);
    EXPECT_FALSE(a.isWrite());
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0xABCDEF00u);
    EXPECT_TRUE(a.isWrite());
    EXPECT_FALSE(src->next(a));
    std::filesystem::remove(path);
}

TEST(TraceIoTest, TextRoundTrip)
{
    const std::string path = tempPath("txt.trc");
    {
        std::string err;
        auto w = TraceWriter::create(path, TraceFormat::Text, 1, &err);
        ASSERT_NE(w, nullptr) << err;
        w->append({0x40, AccessType::Write});
        w->append({0x80, AccessType::Read});
        EXPECT_EQ(w->close(), "");
    }
    std::string err;
    auto src = TraceSource::open(path, 0, /*loop=*/false, &err);
    ASSERT_NE(src, nullptr) << err;
    EXPECT_EQ(src->info().format, TraceFormat::Text);
    MemAccess a;
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x40u);
    EXPECT_TRUE(a.isWrite());
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x80u);
    EXPECT_FALSE(src->next(a));
    std::filesystem::remove(path);
}

TEST(TraceIoTest, TextSkipsComments)
{
    const std::string path = tempPath("cmt.trc");
    {
        std::ofstream os(path);
        os << "# a comment line\nR 100\n# another\nW 200\n";
    }
    std::string err;
    auto src = TraceSource::open(path, 0, /*loop=*/false, &err);
    ASSERT_NE(src, nullptr) << err;
    MemAccess a;
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x100u);
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x200u);
    EXPECT_FALSE(src->next(a));
    std::filesystem::remove(path);
}

TEST(TraceIoTest, LoopingRestarts)
{
    const std::string path = tempPath("loop.trc");
    {
        std::string err;
        auto w = TraceWriter::create(path, TraceFormat::Sliptrc2, 1,
                                     &err);
        ASSERT_NE(w, nullptr) << err;
        w->append({0x40, AccessType::Read});
        EXPECT_EQ(w->close(), "");
    }
    std::string err;
    auto src = TraceSource::open(path, 0, /*loop=*/true, &err);
    ASSERT_NE(src, nullptr) << err;
    MemAccess a;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(src->next(a));
        EXPECT_EQ(a.addr, 0x40u);
    }
    std::filesystem::remove(path);
}

TEST(TraceIoTest, DrivesSystem)
{
    const std::string path = tempPath("sys.trc");
    {
        std::string err;
        auto w = TraceWriter::create(path, TraceFormat::Sliptrc2, 1,
                                     &err);
        ASSERT_NE(w, nullptr) << err;
        // A small loop as a trace: second pass hits in L1.
        for (int rep = 0; rep < 4; ++rep)
            for (Addr l = 0; l < 64; ++l)
                w->append({(Addr{1} << 34) + l * kLineSize,
                           AccessType::Read});
        EXPECT_EQ(w->close(), "");
    }
    SystemConfig cfg;
    System sys(cfg);
    std::string err;
    auto src = TraceSource::open(path, 0, /*loop=*/false, &err);
    ASSERT_NE(src, nullptr) << err;
    sys.run({src.get()}, 4 * 64, 0);
    EXPECT_EQ(sys.coreStats(0).accesses, 4u * 64);
    // 64 compulsory misses, the rest L1 hits.
    EXPECT_EQ(sys.coreStats(0).l1Hits, 3u * 64);
    std::filesystem::remove(path);
}

TEST(StatsDumpTest, ContainsKeyLines)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::SlipAbp;
    System sys(cfg);
    auto w = makeSpecWorkload("gcc");
    sys.run({w.get()}, 50000, 10000);

    std::ostringstream os;
    dumpStats(sys, os);
    const std::string out = os.str();
    for (const char *key :
         {"system.policy SLIP+ABP", "core0.l2.demand_accesses",
          "l3.energy_pj.total", "dram.reads", "eou.operations",
          "core0.tlb.misses", "l3.insert_class.abp"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(InclusiveL3Test, BackInvalidatesUpperLevels)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::Baseline;
    cfg.inclusiveL3 = true;
    System sys(cfg);
    // Thrash the L3 with a large loop; inclusion means L1/L2 can never
    // hold a line absent from L3.
    auto w = std::make_unique<Workload>("t", 0.3, 9);
    w->addPattern(
        std::make_unique<RandomPattern>(Addr{1} << 34, 8 << 20));
    w->addPhase({1.0}, 1u << 30);
    sys.run({w.get()}, 300000, 0);

    // Verify the inclusion invariant exhaustively.
    unsigned violations = 0;
    for (unsigned lvl = 0; lvl < 2; ++lvl) {
        CacheLevel &upper = lvl == 0 ? sys.l1(0) : sys.l2(0);
        for (unsigned set = 0; set < upper.numSets(); ++set)
            for (unsigned way = 0; way < upper.numWays(); ++way) {
                const CacheLine &ln = upper.lineAt(set, way);
                if (ln.valid && !sys.l3().peek(ln.tag).hit)
                    ++violations;
            }
    }
    EXPECT_EQ(violations, 0u);
    EXPECT_GT(sys.l2(0).stats().invalidations, 0u);
}

TEST(InclusiveL3Test, AbpWithheldFromL3Pool)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::SlipAbp;
    cfg.inclusiveL3 = true;
    System sys(cfg);
    ASSERT_NE(sys.eouL3(), nullptr);
    EXPECT_FALSE(sys.eouL3()->allowsAbp());
    EXPECT_TRUE(sys.eouL2()->allowsAbp());

    auto w = makeSpecWorkload("lbm");
    sys.run({w.get()}, 200000, 200000);
    // No insertion was ever fully bypassed at the L3.
    EXPECT_EQ(sys.l3().stats().insertClass[unsigned(
                  InsertClass::AllBypass)],
              0u);
    // The L2 still bypasses freely.
    EXPECT_GT(sys.combinedL2Stats().insertClass[unsigned(
                  InsertClass::AllBypass)],
              0u);
}

TEST(RdBlockTest, BlocksShareOnePolicy)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::SlipAbp;
    cfg.rdBlockPages = 4;
    System sys(cfg);
    auto w = std::make_unique<Workload>("t", 0.2, 11);
    w->addPattern(
        std::make_unique<RandomPattern>(Addr{1} << 34, 24 << 20));
    w->addPhase({1.0}, 1u << 30);
    sys.run({w.get()}, 400000, 400000);

    // All pages of one block read the same PTE entry, so converged
    // policies exist and metadata is tracked per block (1/4 as many
    // records as pages touched).
    EXPECT_GT(sys.eouOperations(), 0u);
    EXPECT_LT(sys.metadataStore().pagesTracked(),
              sys.pageTable().pagesTouched() + 16);
    const Addr first_page = (Addr{1} << 34) >> kPageBits;
    const Addr block = first_page / 4;
    const Pte &pte = sys.pageTable().pte(block);
    (void)pte;  // presence is the contract; policy value is workload-
                // dependent
}

TEST(RdBlockTest, ConvergesFasterThanPerPage)
{
    auto eou_ops = [](unsigned block_pages) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::SlipAbp;
        cfg.rdBlockPages = block_pages;
        System sys(cfg);
        auto w = makeSpecWorkload("lbm");
        sys.run({w.get()}, 200000, 0);
        // Stable fraction proxy: bypassed insertions at L2.
        const auto l2 = sys.combinedL2Stats();
        return double(l2.insertClass[unsigned(
                   InsertClass::AllBypass)]) /
               double(l2.insertions + l2.bypasses);
    };
    // Grouping 8 pages per rd-block multiplies the TLB-miss events
    // feeding each block's sampling state machine.
    EXPECT_GT(eou_ops(8), eou_ops(1));
}

TEST(PatternTest2, DriftingLoopDrifts)
{
    DriftingLoopPattern p(0, 64 * kLineSize, /*drift_period=*/16);
    Random rng(1);
    std::unordered_set<Addr> seen;
    for (int i = 0; i < 64 * 40; ++i)
        seen.insert(p.next(rng));
    // A static loop would touch 64 lines; drifting reaches more.
    EXPECT_GT(seen.size(), 100u);
    EXPECT_LE(seen.size(), 8u * 64);  // bounded by the drift region
}

TEST(PatternTest2, DriftingLoopShortTermReuse)
{
    DriftingLoopPattern p(0, 64 * kLineSize, 50);
    Random rng(2);
    std::unordered_map<Addr, int> last;
    int reuses = 0, total = 0;
    for (int i = 0; i < 6400; ++i) {
        const Addr a = p.next(rng);
        auto it = last.find(a);
        if (it != last.end()) {
            ++total;
            reuses += (i - it->second) <= 65;
        }
        last[a] = i;
    }
    // Nearly all reuse is at the loop period.
    EXPECT_GT(double(reuses) / total, 0.9);
}

TEST(PatternTest2, SparseReuseRate)
{
    SparseReusePattern p(0, 16 << 20, 0.10, 512);
    Random rng(3);
    std::unordered_map<Addr, int> last;
    int short_reuse = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const Addr a = p.next(rng);
        auto it = last.find(a);
        if (it != last.end() && i - it->second < 1024)
            ++short_reuse;
        last[a] = i;
    }
    // ~10% of references re-touch a recent line.
    EXPECT_NEAR(double(short_reuse) / n, 0.10, 0.03);
}

} // namespace
} // namespace slip
