/**
 * @file
 * Tests for the workload substrate: pattern reuse-distance properties,
 * mixture weighting, phases, determinism, and the SPEC-like suite.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "mem/trace_io.hh"
#include "scenario/scenario.hh"
#include "workloads/benchmark.hh"
#include "workloads/pattern.hh"
#include "workloads/spec_suite.hh"
#include "workloads/trace_workload.hh"

namespace slip {
namespace {

TEST(PatternTest, LoopCyclesExactly)
{
    LoopPattern p(0x1000, 4 * kLineSize);
    Random rng(1);
    std::set<Addr> first;
    for (int i = 0; i < 4; ++i)
        first.insert(p.next(rng));
    EXPECT_EQ(first.size(), 4u);
    // Second pass revisits the same addresses in the same order.
    EXPECT_EQ(p.next(rng), 0x1000u);
}

TEST(PatternTest, LoopReuseDistanceEqualsFootprint)
{
    const std::uint64_t lines = 100;
    LoopPattern p(0, lines * kLineSize);
    Random rng(1);
    std::unordered_map<Addr, int> last;
    for (int i = 0; i < 1000; ++i) {
        const Addr a = p.next(rng);
        auto it = last.find(a);
        if (it != last.end()) {
            EXPECT_EQ(i - it->second, int(lines));
        }
        last[a] = i;
    }
}

TEST(PatternTest, RandomStaysInRegion)
{
    RandomPattern p(0x10000, 64 * kLineSize);
    Random rng(2);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = p.next(rng);
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x10000u + 64 * kLineSize);
        EXPECT_EQ(a % kLineSize, 0u);
    }
}

TEST(PatternTest, HotColdRatio)
{
    HotColdPattern p(0, 16 * kLineSize, 1024 * kLineSize, 0.75);
    Random rng(3);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hot += p.next(rng) < 16 * kLineSize;
    EXPECT_NEAR(double(hot) / n, 0.75, 0.02);
}

TEST(PatternTest, ScanNeverRepeatsWithinRegion)
{
    ScanPattern p(0, 512 * kLineSize);
    Random rng(4);
    std::unordered_set<Addr> seen;
    for (int i = 0; i < 512; ++i)
        EXPECT_TRUE(seen.insert(p.next(rng)).second);
    // Wraps after covering the region.
    EXPECT_FALSE(seen.insert(p.next(rng)).second);
}

TEST(PatternTest, ChaseIsFullPeriodPermutation)
{
    const std::uint64_t lines = 256;
    ChasePattern p(0, lines * kLineSize);
    Random rng(5);
    std::unordered_set<Addr> seen;
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(seen.insert(p.next(rng)).second)
            << "duplicate at step " << i;
    EXPECT_EQ(seen.size(), lines);
}

TEST(PatternTest, ChaseVisitsManyPages)
{
    ChasePattern p(0, (1u << 20));  // 1 MB = 256 pages
    Random rng(6);
    std::unordered_set<Addr> pages;
    for (int i = 0; i < 512; ++i)
        pages.insert(pageAddr(p.next(rng)));
    // Random page order: the first 512 references should already have
    // touched a large share of the 256 pages.
    EXPECT_GT(pages.size(), 150u);
}

TEST(PatternTest, BimodalWalksSegmentsTwice)
{
    BimodalStreamPattern p(0, 1u << 20, 4 * kLineSize, 64 * kLineSize,
                           1.0);  // always short
    Random rng(7);
    std::map<Addr, int> counts;
    for (int i = 0; i < 8; ++i)
        ++counts[p.next(rng)];
    // One 4-line segment visited exactly twice per line.
    EXPECT_EQ(counts.size(), 4u);
    for (const auto &kv : counts)
        EXPECT_EQ(kv.second, 2);
}

TEST(WorkloadTest, WeightsRespected)
{
    Workload w("t", 0.0, 11);
    w.addPattern(std::make_unique<LoopPattern>(0, 16 * kLineSize));
    w.addPattern(
        std::make_unique<LoopPattern>(1u << 30, 16 * kLineSize));
    w.addPhase({0.8, 0.2}, 1u << 30);
    MemAccess acc;
    int first = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(w.next(acc));
        first += acc.addr < (1u << 30);
    }
    EXPECT_NEAR(double(first) / n, 0.8, 0.02);
}

TEST(WorkloadTest, WriteFraction)
{
    Workload w("t", 0.35, 12);
    w.addPattern(std::make_unique<LoopPattern>(0, 16 * kLineSize));
    w.addPhase({1.0}, 1u << 30);
    MemAccess acc;
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w.next(acc);
        writes += acc.isWrite();
    }
    EXPECT_NEAR(double(writes) / n, 0.35, 0.02);
}

TEST(WorkloadTest, PhasesSwitchAndCycle)
{
    Workload w("t", 0.0, 13);
    w.addPattern(std::make_unique<LoopPattern>(0, 16 * kLineSize));
    w.addPattern(
        std::make_unique<LoopPattern>(1u << 30, 16 * kLineSize));
    w.addPhase({1.0, 0.0}, 100);
    w.addPhase({0.0, 1.0}, 100);
    MemAccess acc;
    for (int i = 0; i < 100; ++i) {
        w.next(acc);
        EXPECT_LT(acc.addr, 1u << 30);
    }
    for (int i = 0; i < 100; ++i) {
        w.next(acc);
        EXPECT_GE(acc.addr, 1u << 30);
    }
    // Cycles back to phase 0.
    w.next(acc);
    EXPECT_LT(acc.addr, 1u << 30);
}

TEST(WorkloadTest, ResetReproducesStream)
{
    auto w = makeSpecWorkload("soplex");
    MemAccess a, b;
    std::vector<MemAccess> first;
    for (int i = 0; i < 1000; ++i) {
        w->next(a);
        first.push_back(a);
    }
    w->reset();
    for (int i = 0; i < 1000; ++i) {
        w->next(b);
        EXPECT_EQ(b.addr, first[i].addr);
        EXPECT_EQ(b.type, first[i].type);
    }
}

TEST(SpecSuiteTest, AllBenchmarksBuildAndProduce)
{
    for (const auto &name : specBenchmarks()) {
        auto w = makeSpecWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_EQ(w->name(), name);
        MemAccess acc;
        for (int i = 0; i < 1000; ++i)
            ASSERT_TRUE(w->next(acc)) << name;
    }
    EXPECT_EQ(specBenchmarks().size(), 14u);
}

TEST(SpecSuiteTest, Figure1SubsetIsValid)
{
    for (const auto &name : figure1Benchmarks()) {
        bool found = false;
        for (const auto &all : specBenchmarks())
            found |= all == name;
        EXPECT_TRUE(found) << name;
    }
    EXPECT_EQ(figure1Benchmarks().size(), 7u);
}

TEST(SpecSuiteTest, MixesReferenceKnownBenchmarks)
{
    EXPECT_EQ(multicoreMixes().size(), 8u);
    for (const auto &mix : multicoreMixes()) {
        EXPECT_NO_FATAL_FAILURE(makeSpecWorkload(mix.first));
        EXPECT_NO_FATAL_FAILURE(makeSpecWorkload(mix.second));
    }
}

TEST(SpecSuiteTest, MixSourcesAreDisjointAcrossCores)
{
    auto s0 = makeMixSource("gcc", 0);
    auto s1 = makeMixSource("gcc", 1);
    MemAccess a, b;
    for (int i = 0; i < 1000; ++i) {
        s0->next(a);
        s1->next(b);
        EXPECT_NE(pageAddr(a.addr), pageAddr(b.addr));
    }
}

TEST(SpecSuiteTest, BenchmarksDiffer)
{
    // Distinct benchmarks must produce distinct streams.
    auto w1 = makeSpecWorkload("gcc");
    auto w2 = makeSpecWorkload("lbm");
    MemAccess a, b;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        w1->next(a);
        w2->next(b);
        same += a.addr == b.addr;
    }
    EXPECT_LT(same, 10);
}

TEST(TraceBufferTest, ReplayAndLimit)
{
    TraceBuffer buf;
    for (Addr a = 0; a < 10; ++a)
        buf.append(a * 64, AccessType::Read);
    EXPECT_EQ(buf.size(), 10u);

    MemAccess acc;
    int n = 0;
    while (buf.next(acc))
        ++n;
    EXPECT_EQ(n, 10);
    buf.reset();

    LimitedSource limited(buf, 4);
    n = 0;
    while (limited.next(acc))
        ++n;
    EXPECT_EQ(n, 4);
}

// ---------------------------------------------------------------------
// `trace:` workload scheme (workloads/trace_workload.hh)
// ---------------------------------------------------------------------

std::string
traceTempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("slip_wl_test_") + name + "_" +
             std::to_string(::getpid())))
        .string();
}

TEST(TraceWorkloadTest, SchemeDetectionAndPath)
{
    EXPECT_TRUE(isTraceWorkload("trace:/tmp/a.trc2"));
    EXPECT_TRUE(isTraceWorkload("trace:"));
    EXPECT_FALSE(isTraceWorkload("soplex"));
    EXPECT_FALSE(isTraceWorkload("mytrace:x"));
    EXPECT_EQ(traceWorkloadPath("trace:/tmp/a.trc2"), "/tmp/a.trc2");
}

TEST(TraceWorkloadTest, ValidateRejectsBadTraces)
{
    // Empty path.
    std::string err = validateTraceWorkload("trace:", 1);
    EXPECT_NE(err.find("empty trace path"), std::string::npos) << err;

    // Unknown file: recoverable, names the path.
    err = validateTraceWorkload("trace:/nonexistent/wl.trc2", 1);
    EXPECT_NE(err.find("/nonexistent/wl.trc2"), std::string::npos)
        << err;
    EXPECT_NE(err.find("cannot open trace"), std::string::npos) << err;

    // A 2-core capture cannot drive a 4-core run...
    const std::string path = traceTempPath("2c.trc2");
    {
        std::string werr;
        auto w = TraceWriter::create(path, TraceFormat::Sliptrc2, 2,
                                     &werr);
        ASSERT_NE(w, nullptr) << werr;
        w->append(TraceRecord{0, 0x1000, false, 1});
        w->append(TraceRecord{1, 0x2000, false, 1});
        ASSERT_EQ(w->close(), "");
    }
    err = validateTraceWorkload("trace:" + path, 4);
    EXPECT_NE(err.find("trace provides 2 cores"), std::string::npos)
        << err;
    // ...but is fine at its own width, and a single-core trace feeds
    // any core count.
    EXPECT_EQ(validateTraceWorkload("trace:" + path, 2), "");
    std::filesystem::remove(path);
}

TEST(TraceWorkloadTest, ScenarioValidationRejectsUnknownPath)
{
    Scenario s;
    s.name = "t";
    s.workloads = {"trace:/nonexistent/wl.trc2"};
    const std::string err = validateScenario(s);
    EXPECT_NE(err.find("$.workloads[0]"), std::string::npos) << err;
    EXPECT_NE(err.find("/nonexistent/wl.trc2"), std::string::npos)
        << err;

    // The same trace name accepted by a scenario once the file exists.
    const std::string path = traceTempPath("ok.trc2");
    {
        std::string werr;
        auto w = TraceWriter::create(path, TraceFormat::Sliptrc2, 1,
                                     &werr);
        ASSERT_NE(w, nullptr) << werr;
        w->append(TraceRecord{0, 0x1000, false, 1});
        ASSERT_EQ(w->close(), "");
    }
    s.workloads = {"trace:" + path};
    EXPECT_EQ(validateScenario(s), "");
    std::filesystem::remove(path);
}

TEST(TraceWorkloadTest, ResolvesThroughMixSourceRegistry)
{
    const std::string path = traceTempPath("mix.trc2");
    {
        std::string werr;
        auto w = TraceWriter::create(path, TraceFormat::Sliptrc2, 1,
                                     &werr);
        ASSERT_NE(w, nullptr) << werr;
        w->append(TraceRecord{0, 0x4000, false, 1});
        w->append(TraceRecord{0, 0x4040, true, 1});
        ASSERT_EQ(w->close(), "");
    }
    auto src = makeMixSource("trace:" + path, 0);
    ASSERT_NE(src, nullptr);
    MemAccess a;
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x4000u);
    EXPECT_FALSE(a.isWrite());
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x4040u);
    EXPECT_TRUE(a.isWrite());
    // `trace:` sources loop: the stream restarts instead of ending.
    ASSERT_TRUE(src->next(a));
    EXPECT_EQ(a.addr, 0x4000u);
    std::filesystem::remove(path);
}

} // namespace
} // namespace slip
